//! The paper's inflationary semantics for probabilistic datalog (§3.3):
//!
//! ```text
//! Repeat forever {
//!   In parallel, for each rule r: R(X̄, Ȳ)@P ← B(X̄, Ȳ, Z̄) do {
//!     newVals[r] := valuations of the body of r on the old state − oldVals[r];
//!     oldVals[r] := oldVals[r] ∪ newVals[r];
//!     R := R ∪ repair-key_X̄@P(π_{X̄,Ȳ,P}(newVals[r]));
//!   }
//! }
//! ```
//!
//! Three engines share the single-step machinery:
//! * [`step_distribution`] — the exact successor distribution of one step
//!   (all rules fire in parallel; choices across rules and key groups are
//!   independent, so probabilities multiply);
//! * [`enumerate_fixpoints`] — Proposition 4.4's exhaustive traversal of
//!   the computation tree down to all fixpoints (exponential, exact);
//! * [`sample_fixpoint`] — one top-to-bottom random path through the
//!   computation tree, the inner loop of Theorem 4.3's sampler.
//!
//! A probabilistic datalog query must reach a fixpoint on every path:
//! `oldVals` grows strictly on every non-fixpoint step and is bounded by
//! the (polynomially many) valuations over the active domain.

use crate::ast::{Program, Rule};
use crate::eval::{
    encode_valuation, head_key, instantiate_head, prepare_database, rule_valuations, rule_weight,
};
use crate::DatalogError;
use pfq_data::intern::{self, Interner, StateId, TransitionCache};
use pfq_data::{Database, Tuple};
use pfq_num::{dist::pick_weighted_index, Distribution, Ratio};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A node of the computation tree: the current database plus the
/// per-rule `oldVals` bookkeeping. `Ord` lets identical nodes reached by
/// different choice paths merge their probability mass; `Hash` lets the
/// memoizing engine intern nodes to dense [`StateId`]s.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EngineState {
    /// The current (inflationary) database.
    pub db: Database,
    /// `oldVals[r]`: body valuations of rule `r` already consumed,
    /// encoded over the rule's canonical variable order.
    old_vals: Vec<BTreeSet<Tuple>>,
}

impl EngineState {
    /// The initial state: IDB relations declared, all `oldVals` empty.
    pub fn initial(program: &Program, db: &Database) -> Result<EngineState, DatalogError> {
        Ok(EngineState {
            db: prepare_database(program, db)?,
            old_vals: vec![BTreeSet::new(); program.rules.len()],
        })
    }
}

/// What one rule contributes to one step: its repair-key choice groups.
struct RuleFiring {
    /// Per group: the candidate head tuples with their (unnormalized)
    /// weights.
    groups: Vec<Vec<(Tuple, Ratio)>>,
    /// The valuation encodings consumed (to be added to `oldVals`).
    consumed: BTreeSet<Tuple>,
}

/// Computes rule `r`'s firing against the *old* database.
fn fire_rule(
    rule: &Rule,
    state: &EngineState,
    rule_index: usize,
) -> Result<Option<RuleFiring>, DatalogError> {
    let vars = rule.all_variables();
    let vals = rule_valuations(rule, &state.db, &BTreeMap::new())?;
    let mut consumed = BTreeSet::new();
    // π_{X̄,Ȳ,P}(newVals): project new valuations onto the head tuple and
    // weight, de-duplicating (set semantics of the projection).
    let mut projected: BTreeSet<(Tuple, Ratio)> = BTreeSet::new();
    for val in &vals {
        let enc = encode_valuation(&vars, val);
        if state.old_vals[rule_index].contains(&enc) {
            continue;
        }
        consumed.insert(enc);
        let head_tuple = instantiate_head(&rule.head, val)?;
        let w = rule_weight(rule, val)?;
        projected.insert((head_tuple, w));
    }
    if consumed.is_empty() {
        return Ok(None);
    }
    // Group by the key (underlined) positions.
    let mut groups: BTreeMap<Tuple, Vec<(Tuple, Ratio)>> = BTreeMap::new();
    for (t, w) in projected {
        groups
            .entry(head_key(&rule.head, &t))
            .or_default()
            .push((t, w));
    }
    Ok(Some(RuleFiring {
        groups: groups.into_values().collect(),
        consumed,
    }))
}

/// Whether `state` is a fixpoint: no rule has new valuations.
pub fn is_fixpoint(program: &Program, state: &EngineState) -> Result<bool, DatalogError> {
    for (i, rule) in program.rules.iter().enumerate() {
        if fire_rule(rule, state, i)?.is_some() {
            return Ok(false);
        }
    }
    Ok(true)
}

/// The exact distribution of successor states after one parallel step.
///
/// Returns `None` if `state` is a fixpoint. Probabilities multiply across
/// rules and across key groups (independent repair-key applications).
pub fn step_distribution(
    program: &Program,
    state: &EngineState,
) -> Result<Option<Distribution<EngineState>>, DatalogError> {
    let mut firings: Vec<(usize, RuleFiring)> = Vec::new();
    for (i, rule) in program.rules.iter().enumerate() {
        if let Some(f) = fire_rule(rule, state, i)? {
            firings.push((i, f));
        }
    }
    if firings.is_empty() {
        return Ok(None);
    }

    // Deterministic part of the successor: updated oldVals.
    let mut base = state.clone();
    for (i, f) in &firings {
        base.old_vals[*i].extend(f.consumed.iter().cloned());
    }

    // Probabilistic part: the product over all choice groups.
    let mut out = Distribution::singleton(base);
    for (i, f) in &firings {
        let relation = &program.rules[*i].head.relation;
        for group in &f.groups {
            let total: Ratio = group.iter().map(|(_, w)| w).sum();
            let choice: Distribution<&Tuple> =
                group.iter().map(|(t, w)| (t, w.div_ref(&total))).collect();
            out = out.product(&choice, |s: &EngineState, t: &&Tuple| {
                let mut next = s.clone();
                next.db
                    .insert_tuple(relation, (*t).clone())
                    .expect("IDB relation was prepared");
                next
            });
        }
    }
    Ok(Some(out))
}

/// Checks the node budget *before* any work on the node is done: with
/// `node_budget = Some(L)`, at most `L` tree nodes (fixpoint leaves
/// included) are ever processed. Historically the check ran after
/// `expanded += 1` and only for non-fixpoint nodes, which both admitted
/// `limit + 1` expansions and let fixpoint-only trees escape the budget
/// entirely.
fn charge_node_budget(
    expanded: &mut usize,
    node_budget: Option<usize>,
) -> Result<(), DatalogError> {
    *expanded += 1;
    if let Some(limit) = node_budget {
        if *expanded > limit {
            return Err(DatalogError::BudgetExceeded {
                what: "computation-tree expansion",
                limit,
            });
        }
    }
    Ok(())
}

/// Proposition 4.4: exhaustively traverses the computation tree, merging
/// probability mass of identical states, and returns the exact
/// distribution over fixpoint databases.
///
/// `node_budget` bounds the number of tree nodes processed (fixpoint
/// leaves included, charged before expansion); exceeding it aborts with
/// [`DatalogError::BudgetExceeded`].
///
/// This is the legacy un-memoized engine, kept as the reference
/// implementation that the differential tests compare
/// [`enumerate_fixpoints_memo`] against.
pub fn enumerate_fixpoints(
    program: &Program,
    db: &Database,
    node_budget: Option<usize>,
) -> Result<Distribution<Database>, DatalogError> {
    let mut frontier: BTreeMap<EngineState, Ratio> = BTreeMap::new();
    frontier.insert(EngineState::initial(program, db)?, Ratio::one());
    let mut fixpoints = Distribution::new();
    let mut expanded = 0usize;
    while let Some((state, p)) = frontier.pop_first() {
        charge_node_budget(&mut expanded, node_budget)?;
        match step_distribution(program, &state)? {
            None => fixpoints.add(state.db, p),
            Some(successors) => {
                for (next, q) in successors.into_iter() {
                    let mass = p.mul_ref(&q);
                    frontier
                        .entry(next)
                        .and_modify(|m| *m = m.add_ref(&mass))
                        .or_insert(mass);
                }
            }
        }
    }
    Ok(fixpoints)
}

/// A cached successor row: `None` marks a fixpoint, `Some` lists the
/// successors as interned ids with their one-step probabilities.
type StepRow = Option<Arc<Vec<(StateId, Ratio)>>>;

/// The memo state of the inflationary engine: interned computation-tree
/// nodes plus two [`TransitionCache`]s — per-state successor rows and
/// whole-tree enumeration results, both keyed by
/// `(program fingerprint, StateId)`.
///
/// One `FixpointMemo` may be shared across queries, across the possible
/// worlds of a pc-table, and across repeated evaluations: states are
/// immutable, so entries never invalidate.
pub struct FixpointMemo {
    states: Interner<EngineState>,
    steps: TransitionCache<StepRow>,
    results: TransitionCache<Arc<Distribution<Database>>>,
}

/// Counters exposed by [`FixpointMemo::stats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FixpointMemoStats {
    /// Distinct computation-tree nodes interned.
    pub states: usize,
    /// Estimated logical bytes of the interned nodes.
    pub approx_bytes: usize,
    /// Successor-row lookups that found a memoized row.
    pub step_hits: u64,
    /// Successor-row lookups that had to evaluate the rules.
    pub step_misses: u64,
    /// Whole-tree lookups that found a memoized distribution.
    pub result_hits: u64,
    /// Whole-tree lookups that had to traverse the tree.
    pub result_misses: u64,
}

/// Estimated logical bytes of one engine state (database content plus
/// `oldVals` bookkeeping).
fn engine_state_approx_bytes(state: &EngineState) -> usize {
    let vals: usize = state
        .old_vals
        .iter()
        .flat_map(|set| set.iter())
        .map(|t| {
            t.values()
                .iter()
                .map(intern::value_approx_bytes)
                .sum::<usize>()
        })
        .sum();
    intern::database_approx_bytes(&state.db) + vals
}

impl FixpointMemo {
    /// An empty memo.
    pub fn new() -> FixpointMemo {
        FixpointMemo {
            states: Interner::with_sizer(engine_state_approx_bytes),
            steps: TransitionCache::new(),
            results: TransitionCache::new(),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> FixpointMemoStats {
        FixpointMemoStats {
            states: self.states.len(),
            approx_bytes: self.states.approx_bytes(),
            step_hits: self.steps.hits(),
            step_misses: self.steps.misses(),
            result_hits: self.results.hits(),
            result_misses: self.results.misses(),
        }
    }
}

impl Default for FixpointMemo {
    fn default() -> Self {
        FixpointMemo::new()
    }
}

/// The stable fingerprint of a program, keying its memo entries.
pub fn program_fingerprint(program: &Program) -> u64 {
    intern::fingerprint64(&program.to_string())
}

/// Memoized Proposition 4.4: like [`enumerate_fixpoints`], but the
/// frontier runs on interned [`StateId`]s (dedup is a `u32` compare),
/// successor rows are reused across evaluations through `memo`, and the
/// complete fixpoint distribution per `(program, initial state)` is
/// memoized, so repeated queries over the same program and database —
/// in particular the per-world loop over a pc-table — skip the traversal
/// entirely.
///
/// Returns bit-identical distributions to [`enumerate_fixpoints`]:
/// rational mass is merged exactly, so traversal order cannot change the
/// result. `node_budget` charges only nodes actually processed — work
/// served from the memo is free, so a budget that fails cold can succeed
/// warm.
pub fn enumerate_fixpoints_memo(
    program: &Program,
    db: &Database,
    node_budget: Option<usize>,
    memo: &mut FixpointMemo,
) -> Result<Arc<Distribution<Database>>, DatalogError> {
    let fp = program_fingerprint(program);
    let initial = memo.states.intern(EngineState::initial(program, db)?);
    if let Some(done) = memo.results.get(fp, initial) {
        return Ok(done);
    }
    let mut frontier: BTreeMap<StateId, Ratio> = BTreeMap::new();
    frontier.insert(initial, Ratio::one());
    let mut fixpoints = Distribution::new();
    let mut expanded = 0usize;
    while let Some((sid, p)) = frontier.pop_first() {
        charge_node_budget(&mut expanded, node_budget)?;
        let row = match memo.steps.get(fp, sid) {
            Some(row) => row,
            None => {
                let state = memo.states.resolve(sid).clone();
                let row: StepRow = step_distribution(program, &state)?.map(|successors| {
                    Arc::new(
                        successors
                            .into_iter()
                            .map(|(next, q)| (memo.states.intern(next), q))
                            .collect(),
                    )
                });
                memo.steps.insert(fp, sid, row.clone());
                row
            }
        };
        match row {
            None => fixpoints.add(memo.states.resolve(sid).db.clone(), p),
            Some(successors) => {
                for (next, q) in successors.iter() {
                    let mass = p.mul_ref(q);
                    frontier
                        .entry(*next)
                        .and_modify(|m| *m = m.add_ref(&mass))
                        .or_insert(mass);
                }
            }
        }
    }
    let fixpoints = Arc::new(fixpoints);
    memo.results.insert(fp, initial, fixpoints.clone());
    Ok(fixpoints)
}

/// One random computation path to a fixpoint — the sampling primitive of
/// Theorem 4.3. `max_steps` is a defensive bound; the semantics
/// guarantees termination.
pub fn sample_fixpoint<R: Rng + ?Sized>(
    program: &Program,
    db: &Database,
    rng: &mut R,
    max_steps: usize,
) -> Result<Database, DatalogError> {
    let mut state = EngineState::initial(program, db)?;
    for _ in 0..max_steps {
        let mut fired = false;
        // Compute all firings against the old state before mutating.
        let mut firings: Vec<(usize, RuleFiring)> = Vec::new();
        for (i, rule) in program.rules.iter().enumerate() {
            if let Some(f) = fire_rule(rule, &state, i)? {
                firings.push((i, f));
                fired = true;
            }
        }
        if !fired {
            return Ok(state.db);
        }
        for (i, f) in firings {
            state.old_vals[i].extend(f.consumed);
            let relation = program.rules[i].head.relation.clone();
            for group in f.groups {
                let weights: Vec<Ratio> = group.iter().map(|(_, w)| w.clone()).collect();
                let pick = pick_weighted_index(&weights, rng.gen::<u64>());
                state
                    .db
                    .insert_tuple(&relation, group[pick].0.clone())
                    .expect("IDB relation was prepared");
            }
        }
    }
    Err(DatalogError::BudgetExceeded {
        what: "inflationary sampling steps",
        limit: max_steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;
    use pfq_data::{tuple, Relation, Schema, Value};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Example 3.9's database: E = {(v,w,1/2), (v,u,1/2)}.
    fn fork_db() -> Database {
        Database::new().with(
            "E",
            Relation::from_rows(
                Schema::new(["i", "j", "p"]),
                [
                    tuple!["v", "w", Value::frac(1, 2)],
                    tuple!["v", "u", Value::frac(1, 2)],
                ],
            ),
        )
    }

    fn reach_program() -> Program {
        parse_program(
            "C(v).\n\
             C2(X!, Y) @P :- C(X), E(X, Y, P).\n\
             C(Y) :- C2(X, Y).",
        )
        .unwrap()
    }

    #[test]
    fn example_3_9_fixpoint_distribution() {
        // Each of w and u is reached with probability 1/2 as the single
        // chosen successor of v; then no new valuations appear (one more
        // C2 step for the second node may fire — trace per the paper:
        // the *other* valuation is no longer new, so only the chosen
        // branch extends C).
        let worlds = enumerate_fixpoints(&reach_program(), &fork_db(), None).unwrap();
        assert!(worlds.is_proper());
        let p_w = worlds.probability_that(|db| db.get("C").unwrap().contains(&tuple!["w"]));
        let p_u = worlds.probability_that(|db| db.get("C").unwrap().contains(&tuple!["u"]));
        assert_eq!(p_w, Ratio::new(1, 2));
        assert_eq!(p_u, Ratio::new(1, 2));
        // v is always in C.
        let p_v = worlds.probability_that(|db| db.get("C").unwrap().contains(&tuple!["v"]));
        assert!(p_v.is_one());
    }

    #[test]
    fn deterministic_program_single_fixpoint() {
        let p = parse_program("T(X, Y) :- E(X, Y).\nT(X, Z) :- T(X, Y), E(Y, Z).").unwrap();
        let db = Database::new().with(
            "E",
            Relation::from_rows(Schema::new(["i", "j"]), [tuple![1, 2], tuple![2, 3]]),
        );
        let worlds = enumerate_fixpoints(&p, &db, None).unwrap();
        assert_eq!(worlds.support_size(), 1);
        let (only, p1) = worlds.iter().next().unwrap();
        assert!(p1.is_one());
        assert_eq!(only.get("T").unwrap().len(), 3);
        // Matches the semi-naive engine exactly.
        let classic = crate::seminaive::evaluate(&p, &db).unwrap();
        assert_eq!(only.get("T"), classic.get("T"));
    }

    #[test]
    fn example_3_6_reuse_subtlety() {
        // Example 3.6's moral: without staging the choice through C2,
        // probabilistic grouping degenerates. Here the key is Y itself,
        // so every successor forms its own singleton group, *all* of them
        // are added, and Pr[b ∈ C] = 1 — the paper's "all tuples appear
        // with probability 1" observation. (Example 3.9 restores the
        // by-source choice by staging through C2 with key X.)
        let program = parse_program("C(a).\nC(Y!) @P :- C(X), E(X, Y, P).").unwrap();
        let db = Database::new().with(
            "E",
            Relation::from_rows(
                Schema::new(["i", "j", "p"]),
                [
                    tuple!["a", "b", Value::frac(1, 2)],
                    tuple!["a", "c", Value::frac(1, 2)],
                ],
            ),
        );
        let worlds = enumerate_fixpoints(&program, &db, None).unwrap();
        let p_b = worlds.probability_that(|d| d.get("C").unwrap().contains(&tuple!["b"]));
        assert!(p_b.is_one());
    }

    #[test]
    fn rules_fire_in_parallel_on_old_state() {
        // Two rules copying through a chain: after one step, B has a's
        // successor but C (fed by B) only fires next step.
        let p = parse_program("B(X) :- A(X).\nC(X) :- B(X).").unwrap();
        let db = Database::new().with("A", Relation::from_rows(Schema::new(["v"]), [tuple![1]]));
        let init = EngineState::initial(&p, &db).unwrap();
        let step1 = step_distribution(&p, &init).unwrap().unwrap();
        assert_eq!(step1.support_size(), 1);
        let (s1, _) = step1.iter().next().unwrap();
        assert!(s1.db.get("B").unwrap().contains(&tuple![1]));
        assert!(s1.db.get("C").unwrap().is_empty());
        let step2 = step_distribution(&p, s1).unwrap().unwrap();
        let (s2, _) = step2.iter().next().unwrap();
        assert!(s2.db.get("C").unwrap().contains(&tuple![1]));
        assert!(is_fixpoint(&p, s2).unwrap());
    }

    #[test]
    fn facts_fire_exactly_once() {
        let p = parse_program("C(v).").unwrap();
        let worlds = enumerate_fixpoints(&p, &Database::new(), None).unwrap();
        assert_eq!(worlds.support_size(), 1);
        let (db, _) = worlds.iter().next().unwrap();
        assert_eq!(db.get("C").unwrap().len(), 1);
    }

    #[test]
    fn weighted_choice_distribution() {
        // No keys marked, so the whole head forms one group, with
        // weights 1 and 3: probabilities 1/4 and 3/4.
        let p = parse_program("H(Y) @P :- R(Y, P).").unwrap();
        let db = Database::new().with(
            "R",
            Relation::from_rows(Schema::new(["v", "p"]), [tuple![10, 1], tuple![20, 3]]),
        );
        let worlds = enumerate_fixpoints(&p, &db, None).unwrap();
        assert!(worlds.is_proper());
        let p10 = worlds.probability_that(|d| d.get("H").unwrap().contains(&tuple![10]));
        let p20 = worlds.probability_that(|d| d.get("H").unwrap().contains(&tuple![20]));
        assert_eq!(p10, Ratio::new(1, 4));
        assert_eq!(p20, Ratio::new(3, 4));
    }

    #[test]
    fn mass_merges_across_paths() {
        // Two independent single-choice rules whose order of effect
        // doesn't matter: both paths reach the same fixpoint.
        let p = parse_program("A(X!) :- R(X).\nB(X!) :- R(X).").unwrap();
        let db = Database::new().with("R", Relation::from_rows(Schema::new(["v"]), [tuple![1]]));
        let worlds = enumerate_fixpoints(&p, &db, None).unwrap();
        assert_eq!(worlds.support_size(), 1);
        assert!(worlds.is_proper());
    }

    #[test]
    fn budget_exceeded() {
        let program = reach_program();
        let err = enumerate_fixpoints(&program, &fork_db(), Some(0)).unwrap_err();
        assert!(matches!(err, DatalogError::BudgetExceeded { .. }));
    }

    /// Pins the fixed node-budget semantics: every processed tree node
    /// counts (fixpoint leaves included) and the check runs before the
    /// node is expanded, so `Some(L)` admits exactly `L` nodes.
    #[test]
    fn budget_boundary_is_exact() {
        // Deterministic 3-node path tree: initial, one rule-1 step, one
        // rule-2 step reaching the fixpoint.
        let p = parse_program("T(X, Y) :- E(X, Y).\nT(X, Z) :- T(X, Y), E(Y, Z).").unwrap();
        let db = Database::new().with(
            "E",
            Relation::from_rows(Schema::new(["i", "j"]), [tuple![1, 2], tuple![2, 3]]),
        );
        assert!(enumerate_fixpoints(&p, &db, Some(3)).is_ok());
        assert!(matches!(
            enumerate_fixpoints(&p, &db, Some(2)),
            Err(DatalogError::BudgetExceeded { limit: 2, .. })
        ));
        // The memoized engine charges the same boundary when cold.
        let mut memo = FixpointMemo::new();
        assert!(enumerate_fixpoints_memo(&p, &db, Some(3), &mut memo).is_ok());
        let mut memo = FixpointMemo::new();
        assert!(matches!(
            enumerate_fixpoints_memo(&p, &db, Some(2), &mut memo),
            Err(DatalogError::BudgetExceeded { limit: 2, .. })
        ));
    }

    /// Regression: fixpoint-only trees used to bypass the budget
    /// entirely; now the single leaf is charged too.
    #[test]
    fn budget_charges_fixpoint_leaves() {
        let p = parse_program("T(X, Y) :- E(X, Y).").unwrap();
        let db = Database::new().with("E", Relation::empty(Schema::new(["i", "j"])));
        assert!(enumerate_fixpoints(&p, &db, Some(1)).is_ok());
        assert!(matches!(
            enumerate_fixpoints(&p, &db, Some(0)),
            Err(DatalogError::BudgetExceeded { limit: 0, .. })
        ));
    }

    #[test]
    fn memoized_engine_matches_legacy_bit_for_bit() {
        let cases: Vec<(Program, Database)> = vec![
            (reach_program(), fork_db()),
            (
                parse_program("T(X, Y) :- E(X, Y).\nT(X, Z) :- T(X, Y), E(Y, Z).").unwrap(),
                Database::new().with(
                    "E",
                    Relation::from_rows(Schema::new(["i", "j"]), [tuple![1, 2], tuple![2, 3]]),
                ),
            ),
            (
                parse_program("H(Y) @P :- R(Y, P).").unwrap(),
                Database::new().with(
                    "R",
                    Relation::from_rows(Schema::new(["v", "p"]), [tuple![10, 1], tuple![20, 3]]),
                ),
            ),
        ];
        let mut memo = FixpointMemo::new();
        for (program, db) in &cases {
            let legacy = enumerate_fixpoints(program, db, None).unwrap();
            let memoized = enumerate_fixpoints_memo(program, db, None, &mut memo).unwrap();
            assert_eq!(&legacy, memoized.as_ref());
        }
    }

    #[test]
    fn repeated_enumeration_hits_the_result_memo() {
        let program = reach_program();
        let db = fork_db();
        let mut memo = FixpointMemo::new();
        let first = enumerate_fixpoints_memo(&program, &db, None, &mut memo).unwrap();
        let cold = memo.stats();
        assert_eq!(cold.result_hits, 0);
        assert_eq!(cold.result_misses, 1);
        assert!(cold.states > 0);
        assert!(cold.approx_bytes > 0);
        let second = enumerate_fixpoints_memo(&program, &db, None, &mut memo).unwrap();
        let warm = memo.stats();
        assert!(
            Arc::ptr_eq(&first, &second),
            "second run must be served from the memo"
        );
        assert_eq!(warm.result_hits, 1);
        assert_eq!(warm.states, cold.states, "no new states on a warm run");
        // A *different* program over the same database shares no entries
        // (fingerprint separation) but re-uses the interner.
        let other = parse_program("D(X, Y) :- E(X, Y, P).").unwrap();
        enumerate_fixpoints_memo(&other, &db, None, &mut memo).unwrap();
        assert_eq!(memo.stats().result_hits, 1);
        assert_eq!(memo.stats().result_misses, 2);
    }

    /// A warm memo serves results without charging the node budget: the
    /// budget bounds work actually performed, not work reused.
    #[test]
    fn warm_memo_bypasses_node_budget() {
        let program = reach_program();
        let db = fork_db();
        let mut memo = FixpointMemo::new();
        enumerate_fixpoints_memo(&program, &db, None, &mut memo).unwrap();
        assert!(enumerate_fixpoints_memo(&program, &db, Some(0), &mut memo).is_ok());
    }

    #[test]
    fn sampling_agrees_with_enumeration() {
        let program = reach_program();
        let db = fork_db();
        let exact = enumerate_fixpoints(&program, &db, None).unwrap();
        let p_w_exact = exact.probability_that(|d| d.get("C").unwrap().contains(&tuple!["w"]));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 4000;
        let hits = (0..n)
            .filter(|_| {
                let fp = sample_fixpoint(&program, &db, &mut rng, 10_000).unwrap();
                fp.get("C").unwrap().contains(&tuple!["w"])
            })
            .count();
        assert!((hits as f64 / n as f64 - p_w_exact.to_f64()).abs() < 0.03);
    }

    #[test]
    fn negation_blocks_and_unblocks_operationally() {
        // Guard(X) :- A(X), not B(X). B is derived one step after A, so
        // under parallel firing Guard sees the B-free state first: the
        // valuation fires in step 2 (A present, B not yet).
        let p = parse_program("A(1).\nB(X) :- A(X).\nGuard(X) :- A(X), not B(X).").unwrap();
        let worlds = enumerate_fixpoints(&p, &Database::new(), None).unwrap();
        assert_eq!(worlds.support_size(), 1);
        let (db, _) = worlds.iter().next().unwrap();
        // Step 1: A = {1}. Step 2 (parallel, old state has no B): both
        // B(1) and Guard(1) fire.
        assert!(db.get("Guard").unwrap().contains(&tuple![1]));
        assert!(db.get("B").unwrap().contains(&tuple![1]));

        // With B present from the start, the guard never fires.
        let db0 = Database::new().with(
            "Binit",
            Relation::from_rows(Schema::new(["v"]), [tuple![1]]),
        );
        let p2 = parse_program("A(1).\nB(X) :- Binit(X).\nGuard(X) :- A(X), not B(X).").unwrap();
        let worlds = enumerate_fixpoints(&p2, &db0, None).unwrap();
        let (db, _) = worlds.iter().next().unwrap();
        // B(1) appears in step 1 together with A(1); in step 2 the guard
        // valuation {X=1} is evaluated against a state where B(1) holds,
        // so it is filtered out and never re-fires.
        assert!(db.get("Guard").unwrap().is_empty());
    }

    #[test]
    fn three_node_chain_reaches_end_with_probability_one() {
        // v → w → u linearly: no real choices, end always reached.
        let program = reach_program();
        let db = Database::new().with(
            "E",
            Relation::from_rows(
                Schema::new(["i", "j", "p"]),
                [tuple!["v", "w", 1], tuple!["w", "u", 1]],
            ),
        );
        let worlds = enumerate_fixpoints(&program, &db, None).unwrap();
        let p_u = worlds.probability_that(|d| d.get("C").unwrap().contains(&tuple!["u"]));
        assert!(p_u.is_one());
    }
}
