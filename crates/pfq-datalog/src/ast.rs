//! The abstract syntax of (probabilistic) datalog programs.

use crate::DatalogError;
use pfq_data::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A term: a variable or a constant.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A datalog variable (capitalized in the concrete syntax).
    Var(String),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Variable constructor.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Constant constructor.
    pub fn val(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

/// A body atom: `relation(term, …)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Atom {
    /// The relation name.
    pub relation: String,
    /// The positional terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(relation: impl Into<String>, terms: impl Into<Vec<Term>>) -> Atom {
        Atom {
            relation: relation.into(),
            terms: terms.into(),
        }
    }

    /// Variables appearing in the atom.
    pub fn variables(&self) -> impl Iterator<Item = &str> + '_ {
        self.terms.iter().filter_map(Term::as_var)
    }
}

/// A rule head: `relation(term[!], …) [@ Weight]`.
///
/// `keys[i]` is the paper's *underline* on position `i`. The invariant
/// maintained by constructors: constants are always key positions, and a
/// head with no explicit marking and no weight is fully keyed
/// (deterministic).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Head {
    /// The defined (IDB) relation.
    pub relation: String,
    /// The positional terms.
    pub terms: Vec<Term>,
    /// Which positions are key (underlined) — parallel to `terms`.
    pub keys: Vec<bool>,
    /// The weight variable of `@P`, if any.
    pub weight: Option<String>,
}

impl Head {
    /// A fully deterministic head (all positions key).
    pub fn deterministic(relation: impl Into<String>, terms: impl Into<Vec<Term>>) -> Head {
        let terms = terms.into();
        let keys = vec![true; terms.len()];
        Head {
            relation: relation.into(),
            terms,
            keys,
            weight: None,
        }
    }

    /// A probabilistic head with explicit key marking and optional weight.
    /// Constant positions are forced to key (they never vary within a
    /// group).
    pub fn probabilistic(
        relation: impl Into<String>,
        terms: impl Into<Vec<Term>>,
        mut keys: Vec<bool>,
        weight: Option<String>,
    ) -> Head {
        let terms = terms.into();
        assert_eq!(terms.len(), keys.len(), "keys must parallel terms");
        for (i, t) in terms.iter().enumerate() {
            if matches!(t, Term::Const(_)) {
                keys[i] = true;
            }
        }
        Head {
            relation: relation.into(),
            terms,
            keys,
            weight,
        }
    }

    /// Whether every position is key — i.e. the rule adds all derivable
    /// tuples like classical datalog.
    pub fn is_deterministic(&self) -> bool {
        self.keys.iter().all(|&k| k)
    }

    /// Whether this head survives a print → parse round trip. A
    /// probabilistic head with no `@` weight is recognizable only from
    /// its `!` marks, and the printer can place those only on keyed
    /// *variable* positions — so a weightless head whose keys all sit
    /// on constants (or nowhere) prints exactly like a deterministic
    /// head and cannot be expressed in the concrete syntax.
    pub fn is_renderable(&self) -> bool {
        self.is_deterministic()
            || self.weight.is_some()
            || self
                .terms
                .iter()
                .zip(&self.keys)
                .any(|(t, &k)| k && t.as_var().is_some())
    }

    /// The key-position variables, in order.
    pub fn key_vars(&self) -> Vec<&str> {
        self.terms
            .iter()
            .zip(&self.keys)
            .filter(|(_, &k)| k)
            .filter_map(|(t, _)| t.as_var())
            .collect()
    }

    /// Variables appearing in the head (including the weight variable).
    pub fn variables(&self) -> impl Iterator<Item = &str> + '_ {
        self.terms
            .iter()
            .filter_map(Term::as_var)
            .chain(self.weight.as_deref())
    }
}

/// A rule `head :- body.`; a fact is a rule with an empty body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// The head.
    pub head: Head,
    /// The positive body atoms (conjunction); empty for facts.
    pub body: Vec<Atom>,
    /// Negated body atoms (`not R(X, …)` in the concrete syntax) — an
    /// extension beyond the paper's positive programs, needed to express
    /// the while-language difference idiom (`C − Cold` of Example 3.5).
    /// Safety: every variable of a negated atom must be bound by the
    /// positive body.
    pub negatives: Vec<Atom>,
}

impl Rule {
    /// Builds a positive rule.
    pub fn new(head: Head, body: impl Into<Vec<Atom>>) -> Rule {
        Rule {
            head,
            body: body.into(),
            negatives: Vec::new(),
        }
    }

    /// Builds a rule with negated body atoms.
    pub fn with_negatives(
        head: Head,
        body: impl Into<Vec<Atom>>,
        negatives: impl Into<Vec<Atom>>,
    ) -> Rule {
        Rule {
            head,
            body: body.into(),
            negatives: negatives.into(),
        }
    }

    /// A ground fact.
    pub fn fact(relation: impl Into<String>, values: impl IntoIterator<Item = Value>) -> Rule {
        let terms: Vec<Term> = values.into_iter().map(Term::Const).collect();
        Rule::new(Head::deterministic(relation, terms), Vec::new())
    }

    /// Whether the rule has negated body atoms.
    pub fn has_negation(&self) -> bool {
        !self.negatives.is_empty()
    }

    /// Variables bound by the (positive) body.
    pub fn body_variables(&self) -> BTreeSet<&str> {
        self.body.iter().flat_map(Atom::variables).collect()
    }

    /// All distinct variables of the rule, in first-appearance order
    /// (body first) — the canonical valuation column order.
    pub fn all_variables(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for v in self
            .body
            .iter()
            .flat_map(Atom::variables)
            .chain(self.head.variables())
        {
            if seen.insert(v) {
                out.push(v.to_string());
            }
        }
        out
    }

    /// Range restriction: every head variable (and the weight variable),
    /// and every variable of a negated atom, must be bound by the
    /// positive body.
    pub fn check_safety(&self) -> Result<(), DatalogError> {
        let bound = self.body_variables();
        for v in self
            .head
            .variables()
            .chain(self.negatives.iter().flat_map(Atom::variables))
        {
            if !bound.contains(v) {
                return Err(DatalogError::UnsafeRule {
                    rule: self.to_string(),
                    variable: v.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Whether the rule fires deterministically (no repair-key choice).
    pub fn is_deterministic(&self) -> bool {
        self.head.is_deterministic()
    }
}

/// A datalog program: an ordered list of rules.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Builds a program, checking rule safety.
    pub fn new(rules: impl Into<Vec<Rule>>) -> Result<Program, DatalogError> {
        let program = Program {
            rules: rules.into(),
        };
        for r in &program.rules {
            r.check_safety()?;
        }
        Ok(program)
    }

    /// IDB relations: those defined by some rule head.
    pub fn idb_relations(&self) -> BTreeSet<&str> {
        self.rules
            .iter()
            .map(|r| r.head.relation.as_str())
            .collect()
    }

    /// EDB relations: those read by bodies (positive or negated) but
    /// never defined.
    pub fn edb_relations(&self) -> BTreeSet<&str> {
        let idb = self.idb_relations();
        self.rules
            .iter()
            .flat_map(|r| r.body.iter().chain(r.negatives.iter()))
            .map(|a| a.relation.as_str())
            .filter(|r| !idb.contains(r))
            .collect()
    }

    /// Whether any rule uses negation.
    pub fn has_negation(&self) -> bool {
        self.rules.iter().any(Rule::has_negation)
    }

    /// Whether any rule is probabilistic.
    pub fn is_probabilistic(&self) -> bool {
        self.rules.iter().any(|r| !r.is_deterministic())
    }

    /// Arity of each IDB relation (from heads); errors if two heads of
    /// the same relation disagree.
    pub fn idb_arities(&self) -> Result<Vec<(String, usize)>, DatalogError> {
        let mut out: Vec<(String, usize)> = Vec::new();
        for r in &self.rules {
            let name = &r.head.relation;
            let arity = r.head.terms.len();
            match out.iter().find(|(n, _)| n == name) {
                Some((_, a)) if *a != arity => {
                    return Err(DatalogError::Structure(format!(
                        "relation {name:?} has heads of arity {a} and {arity}"
                    )));
                }
                Some(_) => {}
                None => out.push((name.clone(), arity)),
            }
        }
        out.sort();
        Ok(out)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            // An integral Ratio displays as a bare integer, which the
            // parser would read back as Value::Int — keep the `/den`
            // suffix so `parse(render(t)) == t` for every constant.
            Term::Const(Value::Ratio(r)) => write!(f, "{}/{}", r.numer(), r.denom()),
            Term::Const(c) => write!(f, "{c:?}"),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Head {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        // Suppress `!` marks only on genuinely deterministic heads (no
        // weight): a fully keyed head *with* a weight, e.g. `H(X!) @P`,
        // must keep its marks, or it would reparse with no key
        // positions — a different repair-key grouping.
        let implicit = self.is_deterministic() && self.weight.is_none();
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
            if self.keys[i] && !implicit && t.as_var().is_some() {
                write!(f, "!")?;
            }
        }
        write!(f, ")")?;
        if let Some(w) = &self.weight {
            write!(f, " @{w}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() || !self.negatives.is_empty() {
            write!(f, " :- ")?;
            let mut first = true;
            for a in &self.body {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{a}")?;
            }
            for a in &self.negatives {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "not {a}")?;
            }
        }
        write!(f, ".")
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reach_program() -> Program {
        // Example 3.9.
        Program::new(vec![
            Rule::fact("C", [Value::str("v")]),
            Rule::new(
                Head::probabilistic(
                    "C2",
                    vec![Term::var("X"), Term::var("Y")],
                    vec![true, false],
                    Some("P".into()),
                ),
                vec![
                    Atom::new("C", vec![Term::var("X")]),
                    Atom::new("E", vec![Term::var("X"), Term::var("Y"), Term::var("P")]),
                ],
            ),
            Rule::new(
                Head::deterministic("C", vec![Term::var("Y")]),
                vec![Atom::new("C2", vec![Term::var("X"), Term::var("Y")])],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn idb_edb_split() {
        let p = reach_program();
        let idb: Vec<&str> = p.idb_relations().into_iter().collect();
        assert_eq!(idb, vec!["C", "C2"]);
        let edb: Vec<&str> = p.edb_relations().into_iter().collect();
        assert_eq!(edb, vec!["E"]);
        assert!(p.is_probabilistic());
    }

    #[test]
    fn determinism_flags() {
        let p = reach_program();
        assert!(p.rules[0].is_deterministic()); // fact
        assert!(!p.rules[1].is_deterministic()); // repair-key head
        assert!(p.rules[2].is_deterministic());
    }

    #[test]
    fn key_vars() {
        let p = reach_program();
        assert_eq!(p.rules[1].head.key_vars(), vec!["X"]);
        assert!(p.rules[1].head.weight.as_deref() == Some("P"));
    }

    #[test]
    fn safety_check() {
        let bad = Rule::new(
            Head::deterministic("H", vec![Term::var("Z")]),
            vec![Atom::new("R", vec![Term::var("X")])],
        );
        assert!(matches!(
            bad.check_safety(),
            Err(DatalogError::UnsafeRule { .. })
        ));
        // Weight variable must be bound too.
        let bad_w = Rule::new(
            Head::probabilistic("H", vec![Term::var("X")], vec![true], Some("P".into())),
            vec![Atom::new("R", vec![Term::var("X")])],
        );
        assert!(matches!(
            bad_w.check_safety(),
            Err(DatalogError::UnsafeRule { .. })
        ));
    }

    #[test]
    fn constants_forced_to_key() {
        let h = Head::probabilistic(
            "H",
            vec![Term::val(1), Term::var("X")],
            vec![false, false],
            None,
        );
        assert!(h.keys[0]);
        assert!(!h.keys[1]);
    }

    #[test]
    fn arity_conflict_detected() {
        let p = Program::new(vec![
            Rule::fact("C", [Value::int(1)]),
            Rule::fact("C", [Value::int(1), Value::int(2)]),
        ])
        .unwrap();
        assert!(matches!(p.idb_arities(), Err(DatalogError::Structure(_))));
    }

    #[test]
    fn all_variables_order() {
        let p = reach_program();
        assert_eq!(p.rules[1].all_variables(), vec!["X", "Y", "P"]);
    }

    #[test]
    fn negation_safety_and_display() {
        // C − Cold as a rule: New(X) :- C(X), not Cold(X).
        let r = Rule::with_negatives(
            Head::deterministic("New", vec![Term::var("X")]),
            vec![Atom::new("C", vec![Term::var("X")])],
            vec![Atom::new("Cold", vec![Term::var("X")])],
        );
        r.check_safety().unwrap();
        assert!(r.has_negation());
        assert_eq!(r.to_string(), "New(X) :- C(X), not Cold(X).");
        // A negated atom with an unbound variable is unsafe.
        let bad = Rule::with_negatives(
            Head::deterministic("New", vec![Term::var("X")]),
            vec![Atom::new("C", vec![Term::var("X")])],
            vec![Atom::new("Cold", vec![Term::var("Z")])],
        );
        assert!(matches!(
            bad.check_safety(),
            Err(DatalogError::UnsafeRule { .. })
        ));
    }

    #[test]
    fn negated_edb_detection() {
        let r = Rule::with_negatives(
            Head::deterministic("H", vec![Term::var("X")]),
            vec![Atom::new("A", vec![Term::var("X")])],
            vec![Atom::new("B", vec![Term::var("X")])],
        );
        let p = Program::new(vec![r]).unwrap();
        assert!(p.has_negation());
        let edb: Vec<&str> = p.edb_relations().into_iter().collect();
        assert_eq!(edb, vec!["A", "B"]);
    }

    #[test]
    fn display_roundtrip_shape() {
        let p = reach_program();
        let s = p.to_string();
        assert!(s.contains("C2(X!, Y) @P :- C(X), E(X, Y, P)."));
        assert!(s.contains("C(\"v\")."));
        assert!(s.contains("C(Y) :- C2(X, Y)."));
    }

    /// Regression: an integral Ratio constant used to render as a bare
    /// integer (`Ratio::new(2, 1)` → `2`), so re-parsing produced
    /// `Value::Int(2)` and `parse(render(ast)) != ast`.
    #[test]
    fn integral_ratio_constant_roundtrips() {
        let t = Term::val(Value::ratio(pfq_num::Ratio::new(2, 1)));
        assert_eq!(t.to_string(), "2/1");
        let rule = Rule::fact("F", [Value::ratio(pfq_num::Ratio::new(2, 1))]);
        let p = Program::new(vec![rule]).unwrap();
        let reparsed = crate::parse_program(&p.to_string()).unwrap();
        assert_eq!(reparsed, p);
    }

    /// Regression: a fully keyed head *with* a weight (`H(X!) @P`) used
    /// to print without its `!` marks, so re-parsing yielded
    /// `keys = [false]` — a different repair-key grouping.
    #[test]
    fn fully_keyed_weighted_head_roundtrips() {
        let r = Rule::new(
            Head::probabilistic("H", vec![Term::var("X")], vec![true], Some("P".into())),
            vec![Atom::new("R", vec![Term::var("X"), Term::var("P")])],
        );
        assert_eq!(r.to_string(), "H(X!) @P :- R(X, P).");
        let p = Program::new(vec![r]).unwrap();
        let reparsed = crate::parse_program(&p.to_string()).unwrap();
        assert_eq!(reparsed, p);
        // Whole-relation choice heads (no key vars) still print bare.
        let whole = crate::parse_program("H(X) @P :- R(X, P).").unwrap();
        assert_eq!(whole.to_string().trim(), "H(X) @P :- R(X, P).");
        assert_eq!(crate::parse_program(&whole.to_string()).unwrap(), whole);
    }

    /// A weightless probabilistic head with no keyed variable prints
    /// exactly like a deterministic head — `is_renderable` flags it so
    /// generators and shrinkers can avoid the unprintable corner.
    #[test]
    fn renderability_detects_the_unprintable_head() {
        let unprintable = Head::probabilistic("H", vec![Term::var("X")], vec![false], None);
        assert!(!unprintable.is_renderable());
        let weighted =
            Head::probabilistic("H", vec![Term::var("X")], vec![false], Some("P".into()));
        assert!(weighted.is_renderable());
        let marked = Head::probabilistic(
            "H",
            vec![Term::var("X"), Term::var("Y")],
            vec![true, false],
            None,
        );
        assert!(marked.is_renderable());
        assert!(Head::deterministic("H", vec![Term::var("X")]).is_renderable());
    }
}
