//! A hand-written parser for the concrete probabilistic-datalog syntax.
//!
//! ```text
//! % Comments run to end of line (also `//` and `#`).
//! C(v).                          % fact; lowercase idents are constants
//! C2(X!, Y) @P :- C(X), E(X, Y, P).   % `!` marks keys (the paper's underline)
//! C(Y) :- C2(X, Y).              % unmarked head = deterministic rule
//! Half(X) :- R(X, 1/2).          % integers and rationals are literals
//! Flag.                          % 0-ary atoms are allowed
//! ```
//!
//! Identifiers starting with an uppercase letter (or `_`) in *term*
//! position are variables; everything else is a constant. Both `:-` and
//! `<-` are accepted as the rule arrow.

use crate::ast::{Atom, Head, Program, Rule, Term};
use crate::DatalogError;
use pfq_data::Value;
use pfq_num::Ratio;

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Arrow,
    At,
    Bang,
    Slash,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

/// A token with its source position.
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> DatalogError {
        DatalogError::Parse {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> u8 {
        let b = self.src[self.pos];
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        b
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') | Some(b'#') => {
                    while self.peek().is_some_and(|b| b != b'\n') {
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while self.peek().is_some_and(|b| b != b'\n') {
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn tokenize(mut self) -> Result<Vec<Spanned>, DatalogError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(b) = self.peek() else { break };
            let tok = match b {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'.' => {
                    self.bump();
                    Tok::Dot
                }
                b'@' => {
                    self.bump();
                    Tok::At
                }
                b'!' => {
                    self.bump();
                    Tok::Bang
                }
                b'/' => {
                    self.bump();
                    Tok::Slash
                }
                b':' => {
                    self.bump();
                    if self.peek() == Some(b'-') {
                        self.bump();
                        Tok::Arrow
                    } else {
                        return Err(self.error("expected `-` after `:`"));
                    }
                }
                b'<' => {
                    self.bump();
                    if self.peek() == Some(b'-') {
                        self.bump();
                        Tok::Arrow
                    } else {
                        return Err(self.error("expected `-` after `<`"));
                    }
                }
                b'"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.peek() {
                            None => return Err(self.error("unterminated string literal")),
                            Some(b'"') => {
                                self.bump();
                                break;
                            }
                            Some(_) => s.push(self.bump() as char),
                        }
                    }
                    Tok::Str(s)
                }
                b'-' => {
                    self.bump();
                    if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                        return Err(self.error("expected digit after `-`"));
                    }
                    let n = self.lex_number()?;
                    Tok::Int(-n)
                }
                b if b.is_ascii_digit() => Tok::Int(self.lex_number()?),
                b if b.is_ascii_alphabetic() || b == b'_' => {
                    let mut s = String::new();
                    while self
                        .peek()
                        .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
                    {
                        s.push(self.bump() as char);
                    }
                    Tok::Ident(s)
                }
                other => {
                    return Err(self.error(format!("unexpected character {:?}", other as char)))
                }
            };
            out.push(Spanned { tok, line, col });
        }
        Ok(out)
    }

    fn lex_number(&mut self) -> Result<i64, DatalogError> {
        let mut n: i64 = 0;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            let d = (self.bump() - b'0') as i64;
            n = n
                .checked_mul(10)
                .and_then(|n| n.checked_add(d))
                .ok_or_else(|| self.error("integer literal overflows i64"))?;
        }
        Ok(n)
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn error_at(&self, message: impl Into<String>) -> DatalogError {
        let (line, col) = self
            .toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| (s.line, s.col))
            .unwrap_or((1, 1));
        DatalogError::Parse {
            line,
            col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos).map(|s| &s.tok);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), DatalogError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error_at(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, DatalogError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error_at(format!("expected {what}"))),
        }
    }

    /// `term := VAR | ident | INT [ "/" INT ] | STRING`
    fn term(&mut self) -> Result<Term, DatalogError> {
        match self.bump().cloned() {
            Some(Tok::Ident(s)) => {
                if s.starts_with(|c: char| c.is_ascii_uppercase() || c == '_') {
                    Ok(Term::Var(s))
                } else {
                    Ok(Term::Const(Value::str(s)))
                }
            }
            Some(Tok::Str(s)) => Ok(Term::Const(Value::str(s))),
            Some(Tok::Int(n)) => {
                if self.peek() == Some(&Tok::Slash) {
                    self.pos += 1;
                    match self.bump().cloned() {
                        Some(Tok::Int(d)) if d != 0 => {
                            Ok(Term::Const(Value::ratio(Ratio::new(n, d))))
                        }
                        Some(Tok::Int(_)) => Err(self.error_at("rational with zero denominator")),
                        _ => Err(self.error_at("expected denominator after `/`")),
                    }
                } else {
                    Ok(Term::Const(Value::int(n)))
                }
            }
            _ => Err(self.error_at("expected a term")),
        }
    }

    /// Head atom with optional `!` key marks and `@Weight`.
    fn head(&mut self) -> Result<Head, DatalogError> {
        let relation = self.ident("a relation name")?;
        let mut terms = Vec::new();
        let mut marks = Vec::new();
        let mut any_mark = false;
        if self.peek() == Some(&Tok::LParen) {
            self.pos += 1;
            loop {
                terms.push(self.term()?);
                if self.peek() == Some(&Tok::Bang) {
                    self.pos += 1;
                    marks.push(true);
                    any_mark = true;
                } else {
                    marks.push(false);
                }
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.pos += 1;
                    }
                    Some(Tok::RParen) => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.error_at("expected `,` or `)` in head")),
                }
            }
        }
        let weight = if self.peek() == Some(&Tok::At) {
            self.pos += 1;
            let w = self.ident("a weight variable after `@`")?;
            if !w.starts_with(|c: char| c.is_ascii_uppercase() || c == '_') {
                return Err(self.error_at("weight after `@` must be a variable"));
            }
            Some(w)
        } else {
            None
        };
        if any_mark || weight.is_some() {
            Ok(Head::probabilistic(relation, terms, marks, weight))
        } else {
            Ok(Head::deterministic(relation, terms))
        }
    }

    /// Body atom (no marks, no weight).
    fn atom(&mut self) -> Result<Atom, DatalogError> {
        let relation = self.ident("a relation name")?;
        let mut terms = Vec::new();
        if self.peek() == Some(&Tok::LParen) {
            self.pos += 1;
            loop {
                terms.push(self.term()?);
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.pos += 1;
                    }
                    Some(Tok::RParen) => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.error_at("expected `,` or `)` in atom")),
                }
            }
        }
        Ok(Atom::new(relation, terms))
    }

    fn rule(&mut self) -> Result<Rule, DatalogError> {
        let head = self.head()?;
        let mut body = Vec::new();
        let mut negatives = Vec::new();
        if self.peek() == Some(&Tok::Arrow) {
            self.pos += 1;
            // An empty body after the arrow is allowed (paper style
            // `C(v) ←`), detected by an immediate `.`.
            if self.peek() != Some(&Tok::Dot) {
                loop {
                    // `not` is a reserved word introducing a negated atom.
                    if self.peek() == Some(&Tok::Ident("not".to_string())) {
                        self.pos += 1;
                        negatives.push(self.atom()?);
                    } else {
                        body.push(self.atom()?);
                    }
                    if self.peek() == Some(&Tok::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
            }
        }
        self.expect(&Tok::Dot, "`.` at end of rule")?;
        Ok(Rule::with_negatives(head, body, negatives))
    }

    fn program(&mut self) -> Result<Program, DatalogError> {
        let mut rules = Vec::new();
        while self.peek().is_some() {
            rules.push(self.rule()?);
        }
        Program::new(rules)
    }
}

/// Parses a probabilistic-datalog program from source text.
///
/// ```
/// let program = pfq_datalog::parse_program(
///     "C(v).\n\
///      C2(X!, Y) @P :- C(X), E(X, Y, P).\n\
///      C(Y) :- C2(X, Y).",
/// )
/// .unwrap();
/// assert_eq!(program.rules.len(), 3);
/// assert!(program.is_probabilistic());
/// assert!(pfq_datalog::linear::is_linear(&program));
/// ```
pub fn parse_program(src: &str) -> Result<Program, DatalogError> {
    let toks = Lexer::new(src).tokenize()?;
    Parser { toks, pos: 0 }.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_3_9_parses() {
        let p = parse_program(
            r#"
            % Example 3.9 — probabilistic reachability.
            C(v).
            C2(X!, Y) @P :- C(X), E(X, Y, P).
            C(Y) :- C2(X, Y).
            "#,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 3);
        assert!(p.rules[0].is_deterministic());
        assert_eq!(p.rules[0].head.terms, vec![Term::val("v")]);
        assert!(!p.rules[1].is_deterministic());
        assert_eq!(p.rules[1].head.key_vars(), vec!["X"]);
        assert_eq!(p.rules[1].head.weight.as_deref(), Some("P"));
        assert!(p.rules[2].is_deterministic());
    }

    #[test]
    fn paper_arrow_and_empty_body() {
        let p = parse_program("R(c0) <- .\nDone(a) <- R(cn).").unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(p.rules[0].body.is_empty());
        assert_eq!(p.rules[1].body.len(), 1);
    }

    #[test]
    fn literals() {
        let p = parse_program(r#"H(X) :- R(X, 3, -4, 1/2, hello, "Spaced Out")."#).unwrap();
        let terms = &p.rules[0].body[0].terms;
        assert_eq!(terms[1], Term::val(3));
        assert_eq!(terms[2], Term::val(-4));
        assert_eq!(terms[3], Term::Const(Value::frac(1, 2)));
        assert_eq!(terms[4], Term::val("hello"));
        assert_eq!(terms[5], Term::val("Spaced Out"));
    }

    #[test]
    fn zero_ary_atoms() {
        let p = parse_program("Q :- V(X, 1), V(Y, 1).").unwrap();
        assert!(p.rules[0].head.terms.is_empty());
        let p2 = parse_program("Flag.").unwrap();
        assert!(p2.rules[0].body.is_empty());
    }

    #[test]
    fn weight_without_keys_is_whole_relation_choice() {
        let p = parse_program("H(X, Y) @P :- R(X, Y, P).").unwrap();
        assert!(!p.rules[0].is_deterministic());
        assert!(p.rules[0].head.key_vars().is_empty());
    }

    #[test]
    fn comment_styles() {
        let p = parse_program("% percent\n// slashes\n# hash\nA(X) :- B(X). % trailing").unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn underscore_is_variable() {
        let p = parse_program("H(X) :- R(X, _Y).").unwrap();
        assert_eq!(p.rules[0].body[0].terms[1], Term::var("_Y"));
    }

    #[test]
    fn parse_errors_carry_positions() {
        let err = parse_program("H(X :- R(X).").unwrap_err();
        match err {
            DatalogError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse_program("H(X) :- R(X)").is_err()); // missing dot
        assert!(parse_program("H(X) : R(X).").is_err()); // bad arrow
        assert!(parse_program(r#"H(X) :- R("unterminated)."#).is_err());
        assert!(parse_program("H(X) :- R(1/0).").is_err());
        assert!(parse_program("H(X) @p :- R(X, P).").is_err()); // lowercase weight
    }

    #[test]
    fn unsafe_rule_rejected_at_parse() {
        assert!(matches!(
            parse_program("H(Z) :- R(X)."),
            Err(DatalogError::UnsafeRule { .. })
        ));
    }

    #[test]
    fn negation_in_bodies() {
        let p = parse_program("New(X) :- C(X), not Cold(X).").unwrap();
        assert_eq!(p.rules[0].body.len(), 1);
        assert_eq!(p.rules[0].negatives.len(), 1);
        assert_eq!(p.rules[0].negatives[0].relation, "Cold");
        // Multiple negatives, interleaved.
        let p = parse_program("H(X) :- not A(X), B(X), not C(X, 1).").unwrap();
        assert_eq!(p.rules[0].body.len(), 1);
        assert_eq!(p.rules[0].negatives.len(), 2);
        // Unsafe: negated variable unbound by the positive body.
        assert!(matches!(
            parse_program("H(X) :- B(X), not A(Z)."),
            Err(DatalogError::UnsafeRule { .. })
        ));
        // Negation round-trips through Display.
        let p = parse_program("New(X) :- C(X), not Cold(X).").unwrap();
        let p2 = parse_program(&p.to_string()).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn display_parse_roundtrip() {
        let src = "C(v).\nC2(X!, Y) @P :- C(X), E(X, Y, P).\nC(Y) :- C2(X, Y).";
        let p = parse_program(src).unwrap();
        let p2 = parse_program(&p.to_string()).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn multiline_positions() {
        let err = parse_program("A(X) :- B(X).\n\nC(Y :- D(Y).").unwrap_err();
        match err {
            DatalogError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
    }
}
