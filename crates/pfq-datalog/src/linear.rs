//! The linear-datalog restriction: at most one IDB atom per rule body
//! (the restricted fragment for which the paper's Theorem 4.1 hardness
//! already holds).

use crate::ast::Program;

/// Whether `program` is linear datalog: every rule body contains at most
/// one atom over an IDB (head-defined) relation.
pub fn is_linear(program: &Program) -> bool {
    let idb = program.idb_relations();
    program.rules.iter().all(|rule| {
        rule.body
            .iter()
            .chain(rule.negatives.iter())
            .filter(|a| idb.contains(a.relation.as_str()))
            .count()
            <= 1
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn reachability_is_linear() {
        let p =
            parse_program("C(v).\nC2(X!, Y) @P :- C(X), E(X, Y, P).\nC(Y) :- C2(X, Y).").unwrap();
        assert!(is_linear(&p));
    }

    #[test]
    fn transitive_closure_is_linear() {
        let p = parse_program("T(X, Y) :- E(X, Y).\nT(X, Z) :- T(X, Y), E(Y, Z).").unwrap();
        assert!(is_linear(&p));
    }

    #[test]
    fn two_idb_atoms_is_nonlinear() {
        let p = parse_program("T(X, Y) :- E(X, Y).\nT(X, Z) :- T(X, Y), T(Y, Z).").unwrap();
        assert!(!is_linear(&p));
    }

    #[test]
    fn same_relation_twice_counts_twice() {
        let p = parse_program("Q :- V(X, 1), V(Y, 0).\nV(X, B) :- Init(X, B).").unwrap();
        assert!(!is_linear(&p));
    }

    #[test]
    fn edb_atoms_do_not_count() {
        let p = parse_program("H(X) :- A(X), B(X), C(X).").unwrap();
        assert!(is_linear(&p));
    }

    #[test]
    fn facts_are_linear() {
        let p = parse_program("C(v).").unwrap();
        assert!(is_linear(&p));
    }
}
