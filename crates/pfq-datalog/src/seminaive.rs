//! Classical (non-probabilistic) datalog evaluation with semi-naive
//! deltas and *stratified negation* — the “(linear) datalog without
//! probabilistic rules” baseline of Table 1, extended with the standard
//! stratified semantics so the while-language difference idiom
//! (`not Cold(X)`) is expressible.

use crate::ast::Program;
use crate::eval::{instantiate_head, prepare_database, rule_valuations};
use crate::DatalogError;
use pfq_data::{Database, Relation};
use std::collections::BTreeMap;

/// Assigns each IDB relation a stratum such that positive dependencies
/// stay within a stratum or go upward, and negative dependencies go
/// strictly upward. Errors if the program is not stratifiable (recursion
/// through negation).
///
/// Returns `(stratum_of_relation, number_of_strata)`.
pub fn stratify(program: &Program) -> Result<(BTreeMap<String, usize>, usize), DatalogError> {
    let idb: Vec<String> = program
        .idb_relations()
        .into_iter()
        .map(str::to_string)
        .collect();
    let mut stratum: BTreeMap<String, usize> = idb.iter().map(|r| (r.clone(), 1)).collect();
    // Classic iteration: stratum(h) ≥ stratum(b) for positive IDB b,
    // stratum(h) ≥ stratum(c) + 1 for negated IDB c. Any stratum
    // exceeding |IDB| certifies a cycle through negation.
    let limit = idb.len().max(1);
    loop {
        let mut changed = false;
        for rule in &program.rules {
            let h = rule.head.relation.clone();
            let mut needed = stratum[&h];
            for atom in &rule.body {
                if let Some(&s) = stratum.get(&atom.relation) {
                    needed = needed.max(s);
                }
            }
            for atom in &rule.negatives {
                if let Some(&s) = stratum.get(&atom.relation) {
                    needed = needed.max(s + 1);
                }
            }
            if needed > stratum[&h] {
                if needed > limit {
                    return Err(DatalogError::Structure(format!(
                        "program is not stratifiable: recursion through negation involving {h:?}"
                    )));
                }
                stratum.insert(h, needed);
                changed = true;
            }
        }
        if !changed {
            let max = stratum.values().copied().max().unwrap_or(0);
            return Ok((stratum, max));
        }
    }
}

/// Evaluates a deterministic (possibly stratified-negation) datalog
/// program to its perfect-model fixpoint.
///
/// Errors if the program contains probabilistic rules (use the
/// [`crate::inflationary`] engines for those) or is not stratifiable.
pub fn evaluate(program: &Program, db: &Database) -> Result<Database, DatalogError> {
    if program.is_probabilistic() {
        return Err(DatalogError::Structure(
            "semi-naive evaluation requires a non-probabilistic program".into(),
        ));
    }
    let (stratum_of, n_strata) = stratify(program)?;
    let mut total = prepare_database(program, db)?;
    for s in 1..=n_strata {
        let rules: Vec<usize> = program
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| stratum_of[&r.head.relation] == s)
            .map(|(i, _)| i)
            .collect();
        evaluate_stratum(program, &rules, &mut total)?;
    }
    Ok(total)
}

/// Runs one stratum's rules to their fixpoint over `total`, with
/// semi-naive deltas on the stratum's own IDB relations. Negated atoms
/// read `total` directly (their relations belong to lower strata and are
/// already complete).
fn evaluate_stratum(
    program: &Program,
    rule_indices: &[usize],
    total: &mut Database,
) -> Result<(), DatalogError> {
    let heads: Vec<String> = {
        let mut v: Vec<String> = rule_indices
            .iter()
            .map(|&i| program.rules[i].head.relation.clone())
            .collect();
        v.sort();
        v.dedup();
        v
    };

    // Round 0: naive evaluation of every rule of the stratum once.
    let mut delta: BTreeMap<String, Relation> = heads
        .iter()
        .map(|r| {
            (
                r.clone(),
                Relation::empty(total.get(r).unwrap().schema().clone()),
            )
        })
        .collect();
    for &i in rule_indices {
        let rule = &program.rules[i];
        for val in rule_valuations(rule, total, &BTreeMap::new())? {
            let t = instantiate_head(&rule.head, &val)?;
            let target = total.get_mut(&rule.head.relation).expect("prepared IDB");
            if target.insert(t.clone()) {
                delta.get_mut(&rule.head.relation).unwrap().insert(t);
            }
        }
    }

    // Semi-naive rounds: new derivations must pass through a delta of a
    // same-stratum relation in a *positive* position.
    loop {
        let mut next_delta: BTreeMap<String, Relation> = heads
            .iter()
            .map(|r| {
                (
                    r.clone(),
                    Relation::empty(total.get(r).unwrap().schema().clone()),
                )
            })
            .collect();
        let mut progress = false;
        for &ri in rule_indices {
            let rule = &program.rules[ri];
            for (i, atom) in rule.body.iter().enumerate() {
                let Some(d) = delta.get(&atom.relation) else {
                    continue;
                };
                if d.is_empty() {
                    continue;
                }
                let overrides: BTreeMap<usize, &Relation> = [(i, d)].into_iter().collect();
                for val in rule_valuations(rule, total, &overrides)? {
                    let t = instantiate_head(&rule.head, &val)?;
                    let target = total.get_mut(&rule.head.relation).expect("prepared IDB");
                    if target.insert(t.clone()) {
                        next_delta.get_mut(&rule.head.relation).unwrap().insert(t);
                        progress = true;
                    }
                }
            }
        }
        if !progress {
            return Ok(());
        }
        delta = next_delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;
    use pfq_data::{tuple, Schema};

    fn edge_db(edges: &[(i64, i64)]) -> Database {
        Database::new().with(
            "E",
            Relation::from_rows(
                Schema::new(["i", "j"]),
                edges.iter().map(|&(i, j)| tuple![i, j]),
            ),
        )
    }

    #[test]
    fn transitive_closure() {
        let p = parse_program(
            "T(X, Y) :- E(X, Y).\n\
             T(X, Z) :- T(X, Y), E(Y, Z).",
        )
        .unwrap();
        let db = edge_db(&[(1, 2), (2, 3), (3, 4)]);
        let out = evaluate(&p, &db).unwrap();
        let t = out.get("T").unwrap();
        assert_eq!(t.len(), 6); // all ordered pairs along the path
        assert!(t.contains(&tuple![1, 4]));
        assert!(!t.contains(&tuple![4, 1]));
    }

    #[test]
    fn facts_fire_once() {
        let p = parse_program("C(v).\nC(w).").unwrap();
        let out = evaluate(&p, &Database::new()).unwrap();
        assert_eq!(out.get("C").unwrap().len(), 2);
    }

    #[test]
    fn reachability_from_start() {
        let p = parse_program(
            "R(1).\n\
             R(Y) :- R(X), E(X, Y).",
        )
        .unwrap();
        let db = edge_db(&[(1, 2), (2, 3), (5, 6)]);
        let out = evaluate(&p, &db).unwrap();
        let r = out.get("R").unwrap();
        assert_eq!(r.len(), 3); // 1, 2, 3 but not the 5→6 island
        assert!(!r.contains(&tuple![5]));
    }

    #[test]
    fn cycles_terminate() {
        let p = parse_program("R(1).\nR(Y) :- R(X), E(X, Y).").unwrap();
        let db = edge_db(&[(1, 2), (2, 1)]);
        let out = evaluate(&p, &db).unwrap();
        assert_eq!(out.get("R").unwrap().len(), 2);
    }

    #[test]
    fn mutually_recursive_rules() {
        let p = parse_program(
            "Even(0).\n\
             Odd(Y) :- Even(X), S(X, Y).\n\
             Even(Y) :- Odd(X), S(X, Y).",
        )
        .unwrap();
        let db = Database::new().with(
            "S",
            Relation::from_rows(Schema::new(["n", "sn"]), (0..6).map(|i| tuple![i, i + 1])),
        );
        let out = evaluate(&p, &db).unwrap();
        let even = out.get("Even").unwrap();
        let odd = out.get("Odd").unwrap();
        assert!(even.contains(&tuple![0]));
        assert!(even.contains(&tuple![4]));
        assert!(odd.contains(&tuple![5]));
        assert!(!even.contains(&tuple![3]));
        assert_eq!(even.len() + odd.len(), 7);
    }

    #[test]
    fn probabilistic_program_rejected() {
        let p = parse_program("H(X!, Y) :- E(X, Y).").unwrap();
        assert!(matches!(
            evaluate(&p, &edge_db(&[(1, 2)])),
            Err(DatalogError::Structure(_))
        ));
    }

    #[test]
    fn rule_with_unknown_edb_fails() {
        let p = parse_program("H(X) :- Nope(X).").unwrap();
        assert!(matches!(
            evaluate(&p, &Database::new()),
            Err(DatalogError::UnknownRelation(_))
        ));
    }

    #[test]
    fn zero_ary_flag_derivation() {
        let p = parse_program("Done :- R(X, Y), R(Y, X).\nR(1, 2).\nR(2, 1).").unwrap();
        let out = evaluate(&p, &Database::new()).unwrap();
        assert_eq!(out.get("Done").unwrap().len(), 1);
    }

    #[test]
    fn idempotent_on_fixpoint() {
        let p = parse_program("T(X, Y) :- E(X, Y).\nT(X, Z) :- T(X, Y), E(Y, Z).").unwrap();
        let db = edge_db(&[(1, 2), (2, 3)]);
        let once = evaluate(&p, &db).unwrap();
        let twice = evaluate(&p, &once).unwrap();
        assert_eq!(once, twice);
    }

    // ── Stratified negation. ──

    #[test]
    fn negation_over_edb() {
        // Nodes with no outgoing edge.
        let p = parse_program(
            "N(X) :- E(X, Y).\nN(Y) :- E(X, Y).\nSink(X) :- N(X), not HasOut(X).\nHasOut(X) :- E(X, Y).",
        )
        .unwrap();
        let db = edge_db(&[(1, 2), (2, 3)]);
        let out = evaluate(&p, &db).unwrap();
        let sink = out.get("Sink").unwrap();
        assert_eq!(sink.len(), 1);
        assert!(sink.contains(&tuple![3]));
    }

    #[test]
    fn unreachable_via_negation() {
        // Classic: Unreachable = Node − Reach, two strata.
        let p = parse_program(
            "Reach(1).\n\
             Reach(Y) :- Reach(X), E(X, Y).\n\
             Node(X) :- E(X, Y).\n\
             Node(Y) :- E(X, Y).\n\
             Unreach(X) :- Node(X), not Reach(X).",
        )
        .unwrap();
        let db = edge_db(&[(1, 2), (5, 6)]);
        let out = evaluate(&p, &db).unwrap();
        let u = out.get("Unreach").unwrap();
        assert_eq!(u.len(), 2);
        assert!(u.contains(&tuple![5]));
        assert!(u.contains(&tuple![6]));
    }

    #[test]
    fn stratification_orders_strata() {
        let p = parse_program(
            "A(X) :- Base(X).\nB(X) :- A(X).\nC(X) :- Base(X), not B(X).\nD(X) :- C(X), not A(X).",
        )
        .unwrap();
        let (strata, n) = stratify(&p).unwrap();
        assert_eq!(strata["A"], 1);
        assert_eq!(strata["B"], 1);
        assert_eq!(strata["C"], 2);
        // D needs max(stratum(C), stratum(A) + 1) = 2.
        assert_eq!(strata["D"], 2);
        assert_eq!(n, 2);
    }

    #[test]
    fn recursion_through_negation_rejected() {
        let p = parse_program("Win(X) :- Move(X, Y), not Win(Y).").unwrap();
        assert!(matches!(stratify(&p), Err(DatalogError::Structure(_))));
        assert!(evaluate(
            &p,
            &Database::new().with(
                "Move",
                Relation::from_rows(Schema::new(["a", "b"]), [tuple![1, 2]]),
            )
        )
        .is_err());
    }

    #[test]
    fn negation_of_same_stratum_positive_cycle_ok() {
        // A and B are mutually recursive (one stratum); C negates them
        // from the stratum above.
        let p = parse_program(
            "A(X) :- Base(X).\nA(X) :- B(X).\nB(X) :- A(X).\nC(X) :- All(X), not A(X).",
        )
        .unwrap();
        let db = Database::new()
            .with("Base", Relation::from_rows(Schema::new(["v"]), [tuple![1]]))
            .with(
                "All",
                Relation::from_rows(Schema::new(["v"]), [tuple![1], tuple![2]]),
            );
        let out = evaluate(&p, &db).unwrap();
        assert!(out.get("C").unwrap().contains(&tuple![2]));
        assert_eq!(out.get("C").unwrap().len(), 1);
    }

    #[test]
    fn double_negation_three_strata() {
        let p = parse_program(
            "P(X) :- Base(X).\n\
             Q(X) :- All(X), not P(X).\n\
             R(X) :- All(X), not Q(X).",
        )
        .unwrap();
        let db = Database::new()
            .with("Base", Relation::from_rows(Schema::new(["v"]), [tuple![1]]))
            .with(
                "All",
                Relation::from_rows(Schema::new(["v"]), [tuple![1], tuple![2]]),
            );
        let out = evaluate(&p, &db).unwrap();
        // Q = {2}; R = All − Q = {1}.
        assert_eq!(out.get("Q").unwrap().len(), 1);
        assert!(out.get("R").unwrap().contains(&tuple![1]));
        assert_eq!(out.get("R").unwrap().len(), 1);
    }
}
