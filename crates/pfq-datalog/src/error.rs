//! Datalog errors: parse errors and evaluation errors.

use std::fmt;

/// An error from parsing or evaluating a datalog program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DatalogError {
    /// Syntax error with line/column and message.
    Parse {
        /// 1-based source line.
        line: usize,
        /// 1-based source column.
        col: usize,
        /// What went wrong.
        message: String,
    },
    /// A body atom refers to a relation missing from the database.
    UnknownRelation(String),
    /// An atom's term count does not match its relation's arity.
    ArityMismatch {
        /// The relation the atom refers to.
        relation: String,
        /// The relation's declared arity.
        expected: usize,
        /// The atom's term count.
        found: usize,
    },
    /// A head variable (or the `@` weight variable) not bound by the body.
    UnsafeRule {
        /// The offending rule (rendered).
        rule: String,
        /// The unbound variable.
        variable: String,
    },
    /// A rule's weight variable bound to a non-positive / non-numeric value.
    BadWeight(String),
    /// The same relation appears as both EDB input and rule head in a
    /// context that forbids it, or other structural problems.
    Structure(String),
    /// Exact enumeration exceeded a configured budget.
    BudgetExceeded {
        /// What ran out (e.g. computation-tree nodes).
        what: &'static str,
        /// The configured budget.
        limit: usize,
    },
    /// An error from the algebra layer during translation/evaluation.
    Algebra(String),
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            DatalogError::UnknownRelation(r) => write!(f, "unknown relation {r:?}"),
            DatalogError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "atom over {relation:?} has {found} terms but the relation has arity {expected}"
            ),
            DatalogError::UnsafeRule { rule, variable } => {
                write!(
                    f,
                    "unsafe rule `{rule}`: variable {variable:?} not bound by the body"
                )
            }
            DatalogError::BadWeight(msg) => write!(f, "bad rule weight: {msg}"),
            DatalogError::Structure(msg) => write!(f, "program structure error: {msg}"),
            DatalogError::BudgetExceeded { what, limit } => {
                write!(f, "{what} exceeded the budget of {limit}")
            }
            DatalogError::Algebra(msg) => write!(f, "algebra error: {msg}"),
        }
    }
}

impl std::error::Error for DatalogError {}

impl From<pfq_algebra::AlgebraError> for DatalogError {
    fn from(e: pfq_algebra::AlgebraError) -> Self {
        DatalogError::Algebra(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = DatalogError::Parse {
            line: 3,
            col: 7,
            message: "expected `)`".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:7: expected `)`");
        assert!(DatalogError::UnknownRelation("E".into())
            .to_string()
            .contains("\"E\""));
        assert!(DatalogError::ArityMismatch {
            relation: "E".into(),
            expected: 3,
            found: 2
        }
        .to_string()
        .contains("arity 3"));
    }
}
