#![warn(missing_docs)]

//! (Probabilistic) datalog — the paper's §3.3 language.
//!
//! Probabilistic datalog extends datalog with `repair-key` heads: key
//! columns are *underlined* in the paper and marked with `!` in our
//! concrete syntax, and an optional `@P` names the weight variable:
//!
//! ```text
//! % Example 3.9 — probabilistic reachability.
//! C(v).
//! C2(X!, Y) @P :- C(X), E(X, Y, P).
//! C(Y) :- C2(X, Y).
//! ```
//!
//! A head with no `!` marks and no `@` is fully deterministic (the paper:
//! “a rule in which all head variables are underlined is essentially
//! non-probabilistic”).
//!
//! The crate provides:
//! * [`ast`] + [`parser`] — the language itself;
//! * [`eval`] — body-valuation computation (the `newVals` of the paper's
//!   inflationary pseudocode);
//! * [`seminaive`] — classical datalog evaluation (the “datalog without
//!   probabilistic rules” row of Table 1);
//! * [`inflationary`] — the paper's inflationary semantics: per-rule
//!   `oldVals`/`newVals` bookkeeping, parallel firing, per-key-group
//!   repair-key; with exact (computation-tree) and sampling engines;
//! * [`noninflationary`] — translation of a program into a transition
//!   kernel [`pfq_algebra::Interpretation`] (destructive assignment);
//! * [`linear`] — the linear-datalog restriction (≤ 1 IDB atom per body).

pub mod ast;
pub mod error;
pub mod eval;
pub mod inflationary;
pub mod linear;
pub mod noninflationary;
pub mod parser;
pub mod seminaive;

pub use ast::{Atom, Head, Program, Rule, Term};
pub use error::DatalogError;
pub use parser::parse_program;
